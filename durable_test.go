package zstream_test

import (
	"fmt"
	"strings"
	"testing"

	zstream "repro"
)

// TestDurableRuntimeRoundTrip: a durable runtime logs its stream, survives
// a restart over the same directory, resumes from the logged position, and
// the combined output of the two halves equals one uninterrupted run.
func TestDurableRuntimeRoundTrip(t *testing.T) {
	const src = `PATTERN A; B WHERE A.name = B.name AND B.price > A.price WITHIN 5 secs RETURN A, B`
	events := make([]*zstream.Event, 0, 200)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("S%d", i%4)
		events = append(events, tick(uint64(i+1), int64(i)*500, name, float64(100+i%7)))
	}

	feed := func(rt *zstream.Runtime, from uint64) {
		t.Helper()
		for _, ev := range events[from:] {
			cp := *ev
			if err := rt.Ingest(&cp); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}

	// Reference: one crash-free run.
	var want []string
	ref := zstream.NewRuntime(zstream.WithShards(2))
	if _, err := ref.Register(zstream.MustCompile(src), zstream.OnMatch(func(m *zstream.Match) {
		want = append(want, fmt.Sprintf("[%d..%d]%v", m.Start, m.End, m.Fields))
	})); err != nil {
		t.Fatal(err)
	}
	feed(ref, 0)

	// First durable run: stop (simulating a restart) halfway.
	dir := t.TempDir()
	var got []string
	durOpts := func() []zstream.RuntimeOption {
		return []zstream.RuntimeOption{
			zstream.WithShards(2),
			zstream.WithDurability(dir,
				zstream.WithFsync(zstream.FsyncOff),
				zstream.WithCheckpointEvery(64),
				zstream.WithRecoverHandler(func(id zstream.QueryID, qsrc string) func(*zstream.Match) {
					if !strings.Contains(qsrc, "WITHIN") {
						t.Errorf("recover handler got src %q", qsrc)
					}
					return func(m *zstream.Match) { got = append(got, fmt.Sprintf("[%d..%d]%v", m.Start, m.End, m.Fields)) }
				})),
		}
	}
	rt, info, err := zstream.NewDurableRuntime(durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if info.Events != 0 || info.Queries != 0 {
		t.Fatalf("fresh dir reported recovery: %+v", info)
	}
	if _, err := rt.Register(zstream.MustCompile(src), zstream.OnMatch(func(m *zstream.Match) {
		got = append(got, fmt.Sprintf("[%d..%d]%v", m.Start, m.End, m.Fields))
	})); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:120] {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := rt.Stats()
	if !st.WALEnabled || st.WAL.AppendedEvents == 0 {
		t.Fatalf("WAL stats not populated: %+v", st)
	}
	if len(rt.WALFaults()) != 0 {
		t.Fatalf("unexpected WAL faults: %v", rt.WALFaults())
	}

	// Second run over the same directory recovers and resumes.
	rt2, info2, err := zstream.NewDurableRuntime(durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Queries != 1 || info2.LastSeq != 120 {
		t.Fatalf("recovery info = %+v", info2)
	}
	if s := info2.String(); !strings.Contains(s, "queries=1") {
		t.Fatalf("RecoverInfo.String() = %q", s)
	}
	feed(rt2, info2.LastSeq)

	if len(got) != len(want) {
		t.Fatalf("match count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: got %q want %q", i, got[i], want[i])
		}
	}
}
