// Benchmarks, one per table and figure of the paper's evaluation (§6),
// plus the DESIGN.md ablations and a few micro-benchmarks. Each benchmark
// exercises the central workload of its experiment and reports events/s;
// `cmd/zbench` runs the full parameter sweeps and prints the paper-style
// tables.
package zstream_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/nfa"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	runtimepkg "repro/internal/runtime"
	"repro/internal/workload"
)

// benchEngine processes the events through a fresh engine per iteration and
// reports input throughput. Workload events carry pre-stamped sequence
// numbers, so engines share them without a per-event copy.
func benchEngine(b *testing.B, q *query.Query, cfg core.Config, events []*event.Event) {
	b.Helper()
	b.ReportAllocs()
	var matches uint64
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(q, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			eng.Process(ev)
		}
		eng.Flush()
		matches = eng.Snapshot().Matches
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(matches), "matches")
}

func benchNFA(b *testing.B, q *query.Query, events []*event.Event) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := nfa.New(q)
		if err != nil {
			b.Fatal(err)
		}
		// materialize matches like the tree engine does
		m.SetEmit(func([]*event.Event) {})
		for _, ev := range events {
			m.Process(ev)
		}
		m.Flush()
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
}

func query4() *query.Query {
	return query.MustParse(`
		PATTERN IBM; Sun; Oracle
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Oracle.name = 'Oracle'
		AND IBM.price > Sun.price
		WITHIN 200 units`)
}

func query5() *query.Query {
	return query.MustParse(`
		PATTERN IBM; Sun; Oracle
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Oracle.name = 'Oracle'
		WITHIN 200 units`)
}

func query6() *query.Query {
	return query.MustParse(`
		PATTERN IBM; Sun; Oracle; Google
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun'
		AND Oracle.name = 'Oracle' AND Google.name = 'Google'
		AND Oracle.price > Sun.price AND Oracle.price > Google.price
		WITHIN 100 units`)
}

func query7() *query.Query {
	return query.MustParse(`
		PATTERN IBM; !Sun; Oracle
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Oracle.name = 'Oracle'
		WITHIN 200 units`)
}

func query8() *query.Query {
	return query.MustParse(`
		PATTERN P; J; C
		WHERE P.desc = 'publication' AND J.desc = 'project' AND C.desc = 'courses'
		AND P.ip = J.ip = C.ip
		WITHIN 10 hours`)
}

func stock3(n int, sel float64, weights []float64) []*event.Event {
	return workload.GenStocks(workload.StockSpec{
		N: n, Seed: 8, Names: []string{"IBM", "Sun", "Oracle"}, Weights: weights,
		FixedPrice: map[string]float64{"Sun": workload.SelectivityPrice(sel)},
	})
}

// --- Figure 8: Query 4, selectivity 1/8, three evaluators ------------------

func BenchmarkFig8Throughput(b *testing.B) {
	q := query4()
	events := stock3(6000, 0.125, []float64{1, 1, 1})
	b.Run("left-deep", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, events)
	})
	b.Run("right-deep", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyRightDeep, BatchSize: 256}, events)
	})
	b.Run("nfa", func(b *testing.B) { benchNFA(b, q, events) })
}

// --- Figure 9: cost-model estimation over the Figure 8 sweep ---------------

func BenchmarkFig9CostModel(b *testing.B) {
	q := query4()
	st := cost.UniformStats(q.Info, q.Within, 1.0/3)
	shape := plan.LeftDeep(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.EstimateShape(q, st, false, plan.NegAuto, shape); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10: Query 5, rare-IBM rates, three evaluators ------------------

func BenchmarkFig10Throughput(b *testing.B) {
	q := query5()
	events := workload.GenStocks(workload.StockSpec{
		N: 6000, Seed: 10, Names: []string{"IBM", "Sun", "Oracle"},
		Weights: []float64{1, 8, 8}})
	b.Run("left-deep", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, events)
	})
	b.Run("right-deep", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyRightDeep, BatchSize: 256}, events)
	})
	b.Run("nfa", func(b *testing.B) { benchNFA(b, q, events) })
}

// --- Figure 11: cost-model estimation over the Figure 10 sweep -------------

func BenchmarkFig11CostModel(b *testing.B) {
	q := query5()
	st := cost.UniformStats(q.Info, q.Within, 1.0/3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.EstimateShape(q, st, false, plan.NegAuto, plan.RightDeep(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12 / Table 3: Query 6 plans ------------------------------------

func fig12Events(n int) []*event.Event {
	return workload.GenStocks(workload.StockSpec{
		N: n, Seed: 13, Names: []string{"IBM", "Sun", "Oracle", "Google"},
		Weights: []float64{1, 1, 1, 1},
		FixedPrice: map[string]float64{
			"Sun":    workload.SelectivityPrice(1.0 / 50),
			"Google": workload.SelectivityPrice(1),
		}})
}

func BenchmarkFig12Throughput(b *testing.B) {
	q := query6()
	events := fig12Events(8000)
	shapes := map[string]string{
		"left-deep": "(((0 1) 2) 3)", "right-deep": "(0 (1 (2 3)))",
		"bushy": "((0 1) (2 3))", "inner": "(0 ((1 2) 3))",
	}
	for _, name := range []string{"left-deep", "right-deep", "bushy", "inner"} {
		sh, err := plan.ParseShape(shapes[name])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			benchEngine(b, q, core.Config{Strategy: core.StrategyFixed, Shape: sh, BatchSize: 256}, events)
		})
	}
	b.Run("nfa", func(b *testing.B) { benchNFA(b, q, events) })
}

func BenchmarkFig13CostModel(b *testing.B) {
	q := query6()
	st := cost.UniformStats(q.Info, q.Within, 0.25)
	sh, err := plan.ParseShape("(0 ((1 2) 3))")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.EstimateShape(q, st, false, plan.NegAuto, sh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Memory(b *testing.B) {
	q := query6()
	events := fig12Events(8000)
	var peak int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			eng.Process(ev)
		}
		eng.Flush()
		peak = eng.Snapshot().PeakMemBytes
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
}

// --- Figure 14: adaptation ---------------------------------------------------

func BenchmarkFig14Adaptive(b *testing.B) {
	q := query6()
	seg1 := workload.GenStocks(workload.StockSpec{
		N: 4000, Seed: 12, Names: []string{"IBM", "Sun", "Oracle", "Google"},
		Weights: []float64{1, 100, 100, 100}})
	seg2 := fig12Events(4000)
	all := workload.Concat(seg1, seg2)
	benchEngine(b, q, core.Config{Strategy: core.StrategyOptimal, Adaptive: true,
		AdaptEvery: 2, BatchSize: 256, DriftThreshold: 0.3, ImproveThreshold: 0.05}, all)
}

// --- Figures 15/16: negation placement --------------------------------------

func BenchmarkFig15Negation(b *testing.B) {
	q := query7()
	events := workload.GenStocks(workload.StockSpec{
		N: 20000, Seed: 15, Names: []string{"IBM", "Sun", "Oracle"},
		Weights: []float64{1, 1, 20}})
	b.Run("nseq", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, Negation: plan.NegPushdown, BatchSize: 256}, events)
	})
	b.Run("neg-on-top", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, Negation: plan.NegTop, BatchSize: 256}, events)
	})
}

func BenchmarkFig16Negation(b *testing.B) {
	q := query7()
	events := workload.GenStocks(workload.StockSpec{
		N: 20000, Seed: 16, Names: []string{"IBM", "Sun", "Oracle"},
		Weights: []float64{1, 20, 1}})
	b.Run("nseq", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, Negation: plan.NegPushdown, BatchSize: 256}, events)
	})
	b.Run("neg-on-top", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, Negation: plan.NegTop, BatchSize: 256}, events)
	})
}

// --- Table 4 / Figure 17 / Table 5: web log ---------------------------------

func BenchmarkTable4WeblogGen(b *testing.B) {
	b.ReportAllocs()
	var counts workload.WeblogCounts
	for i := 0; i < b.N; i++ {
		_, counts = workload.GenWeblog(workload.WeblogSpec{N: 50_000, Seed: 17})
	}
	b.ReportMetric(float64(counts.Publications), "publications")
}

func weblogBenchEvents() []*event.Event {
	n := 100_000
	span := int64(float64(30*24*3_600_000) * float64(n) / 1_500_000)
	events, _ := workload.GenWeblog(workload.WeblogSpec{N: n, Seed: 17, SpanTicks: span})
	return events
}

func BenchmarkFig17Weblog(b *testing.B) {
	q := query8()
	events := weblogBenchEvents()
	b.Run("left-deep", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, events)
	})
	b.Run("right-deep", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyRightDeep, BatchSize: 256}, events)
	})
	b.Run("nfa", func(b *testing.B) { benchNFA(b, q, events) })
}

func BenchmarkTable5WeblogMemory(b *testing.B) {
	q := query8()
	events := weblogBenchEvents()
	var peak int64
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			eng.Process(ev)
		}
		eng.Flush()
		peak = eng.Snapshot().PeakMemBytes
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
}

// --- §5.2.3: optimizer timing ------------------------------------------------

func BenchmarkOptimizerDP20(b *testing.B) {
	pat := "C0"
	for i := 1; i < 20; i++ {
		pat += fmt.Sprintf(";C%d", i)
	}
	q := query.MustParse("PATTERN " + pat + " WITHIN 100")
	st := cost.UniformStats(q.Info, q.Within, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.Optimize(q, st, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ----------------------------------------------------------------

func BenchmarkAblationHashEquality(b *testing.B) {
	q := query.MustParse(`
		PATTERN T1; T2; T3
		WHERE T1.name = T3.name AND T1.price > T2.price
		WITHIN 200 units`)
	names := make([]string, 64)
	weights := make([]float64, 64)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{N: 8000, Seed: 21, Names: names, Weights: weights})
	b.Run("scan", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, events)
	})
	b.Run("hash", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, UseHash: true, BatchSize: 256}, events)
	})
}

func BenchmarkAblationEAT(b *testing.B) {
	q := query4()
	events := stock3(6000, 0.25, []float64{1, 1, 1})
	b.Run("on", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}, events)
	})
	b.Run("off", func(b *testing.B) {
		benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256, DisableEAT: true}, events)
	})
}

func BenchmarkAblationBatchSize(b *testing.B) {
	q := query4()
	events := stock3(6000, 0.25, []float64{1, 1, 1})
	for _, bs := range []int{1, 64, 512} {
		bs := bs
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			benchEngine(b, q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: bs}, events)
		})
	}
}

// --- micro-benchmarks -----------------------------------------------------------

func BenchmarkMicroParse(b *testing.B) {
	src := `PATTERN T1;T2;T3 WHERE T1.name = T3.name AND T2.name='Google'
		AND T1.price > 1.05 * T2.price WITHIN 10 secs RETURN T1, T2, T3`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroLeafInsert measures steady-state ingest: batches assemble,
// EAT eviction recycles records, and the engine-owned event ring is large
// enough (window + batch slack) that a slot is out of every buffer before
// it is reused. In steady state this path performs zero allocations per
// event.
func BenchmarkMicroLeafInsert(b *testing.B) {
	q := query.MustParse(`PATTERN A;B WHERE A.name='IBM' AND B.name='Sun' AND A.price > B.price + 100000 WITHIN 100`)
	eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const ring = 4096
	events := make([]*event.Event, ring)
	for i := range events {
		name := "IBM"
		if i%2 == 1 {
			name = "Sun"
		}
		events[i] = event.NewStock(0, 0, int64(i), name, 10, 10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%ring]
		ev.Ts = int64(i)
		ev.Seq = 0 // engine restamps; the ring slot left every buffer long ago
		eng.Process(ev)
	}
}

// --- concurrent sharded runtime ---------------------------------------------

// runtimeBenchQueries are four per-symbol monitoring patterns, all
// partition-local over "name" (every predicate equates the symbol across
// classes), the setting the sharded runtime is built for.
func runtimeBenchQueries() []*query.Query {
	srcs := []string{
		`PATTERN Low; High
		 WHERE Low.name = High.name AND High.price > Low.price + 90
		 WITHIN 200 units`,
		`PATTERN High; Low
		 WHERE High.name = Low.name AND Low.price < High.price - 90
		 WITHIN 200 units`,
		`PATTERN T1; T2; T3
		 WHERE T1.name = T2.name AND T2.name = T3.name
		   AND T2.price > T1.price + 80 AND T3.price > T2.price
		 WITHIN 200 units`,
		`PATTERN A; B; C
		 WHERE A.name = B.name AND B.name = C.name
		   AND B.price < A.price - 80 AND C.price < B.price
		 WITHIN 200 units`,
	}
	qs := make([]*query.Query, len(srcs))
	for i, s := range srcs {
		qs[i] = query.MustParse(s)
	}
	return qs
}

func runtimeBenchEvents(n int) []*event.Event {
	names := make([]string, 16)
	weights := make([]float64, 16)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	return workload.GenStocks(workload.StockSpec{N: n, Seed: 31, Names: names, Weights: weights})
}

// benchSequentialEngines serves the queries the pre-runtime way: one
// single-threaded engine per query, run one after another over the stream.
// events/s is stream events per wall-clock second while serving ALL
// queries (the capacity metric both sides share).
func benchSequentialEngines(b *testing.B, qs []*query.Query, cfg core.Config, events []*event.Event) {
	b.Helper()
	b.ReportAllocs()
	var matches uint64
	for i := 0; i < b.N; i++ {
		matches = 0
		for _, q := range qs {
			// Materialize matches like a serving system (and the runtime
			// benchmark) must; a nil emit would skip building them.
			eng, err := core.NewEngine(q, cfg, func(*core.Match) {})
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range events {
				eng.Process(ev)
			}
			eng.Flush()
			matches += eng.Snapshot().Matches
		}
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(matches), "matches")
}

func benchRuntime(b *testing.B, qs []*query.Query, shards int, cfg core.Config, events []*event.Event) {
	b.Helper()
	benchRuntimeCfg(b, qs, runtimepkg.Config{Shards: shards, PartitionBy: "name", BatchSize: 4096}, cfg, events)
}

func benchRuntimeCfg(b *testing.B, qs []*query.Query, rcfg runtimepkg.Config, cfg core.Config, events []*event.Event) {
	b.Helper()
	b.ReportAllocs()
	var matches uint64
	for i := 0; i < b.N; i++ {
		// Construction and registration are setup, not the serving path
		// being measured — at fan-out scale (1024 queries x 4 shards)
		// timing 4096 engine builds would dilute the ingest comparison.
		b.StopTimer()
		rt := runtimepkg.New(rcfg)
		for _, q := range qs {
			if _, err := rt.Register(q, cfg, func(*core.Match) {}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for _, ev := range events {
			if err := rt.Ingest(ev); err != nil {
				b.Fatal(err)
			}
		}
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
		matches = rt.Stats().Engine.Matches
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(matches), "matches")
}

// BenchmarkRuntimeMultiQuery is the headline comparison: four queries
// served by four sequential single-engine runs versus the sharded runtime
// with four workers. Sharding wins even on one core — each shard engine
// buffers only its partitions' events, so per-round assembly scans touch
// a fraction of the window — and scales near-linearly with GOMAXPROCS on
// top of that.
func BenchmarkRuntimeMultiQuery(b *testing.B) {
	qs := runtimeBenchQueries()
	events := runtimeBenchEvents(20000)
	cfg := core.Config{Strategy: core.StrategyOptimal, BatchSize: 256}
	b.Run("sequential-4x1", func(b *testing.B) {
		benchSequentialEngines(b, qs, cfg, events)
	})
	b.Run("runtime-4x4", func(b *testing.B) {
		benchRuntime(b, qs, 4, cfg, events)
	})
}

// BenchmarkRuntimeFanout is the PR 3 headline: 256 parameterized standing
// queries served with naive deliver-to-all fan-out versus the
// predicate-indexed router. Naive ingest cost is O(Q) per event; the
// router touches only the ~Q/symbols engines whose equality atoms match,
// so the gap widens linearly with the query count.
func BenchmarkRuntimeFanout(b *testing.B) {
	qs := experiments.FanoutQueries(256)
	events := experiments.FanoutEvents(20000)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}
	rcfg := runtimepkg.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096}
	b.Run("naive-256", func(b *testing.B) {
		cfg := rcfg
		cfg.NaiveFanout = true
		benchRuntimeCfg(b, qs, cfg, ecfg, events)
	})
	b.Run("router-256", func(b *testing.B) {
		benchRuntimeCfg(b, qs, rcfg, ecfg, events)
	})
}

// BenchmarkRuntimeFanoutShared is the PR 5 headline: 256 standing queries
// in shared-prefix families of 32, run with cross-query subplan sharing
// off versus on. Unshared execution buffers and joins every family's
// `A;B` prefix once per member engine; sharing materializes it once per
// shard and fans the partial matches out.
func BenchmarkRuntimeFanoutShared(b *testing.B) {
	qs := experiments.FanoutSharedQueries(256)
	events := experiments.FanoutSharedEvents(20000)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}
	rcfg := runtimepkg.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096}
	b.Run("unshared-256", func(b *testing.B) {
		cfg := rcfg
		cfg.NoSharing = true
		benchRuntimeCfg(b, qs, cfg, ecfg, events)
	})
	b.Run("shared-256", func(b *testing.B) {
		benchRuntimeCfg(b, qs, rcfg, ecfg, events)
	})
}

// BenchmarkRuntimeThresholdFamily is the PR 10 headline: 256 standing
// queries that differ only in their range-atom constants, run with the
// gen-1 router (every distinct threshold is an interned residual evaluated
// per event) versus the gen-2 sorted-threshold dispatch (one binary search
// per event per direction, cost independent of the threshold count).
func BenchmarkRuntimeThresholdFamily(b *testing.B) {
	qs := experiments.ThresholdQueries(256)
	events := experiments.ThresholdEvents(20000)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}
	rcfg := runtimepkg.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096}
	b.Run("gen1-residual-256", func(b *testing.B) {
		cfg := rcfg
		cfg.NoRangeDispatch = true
		benchRuntimeCfg(b, qs, cfg, ecfg, events)
	})
	b.Run("gen2-range-256", func(b *testing.B) {
		benchRuntimeCfg(b, qs, rcfg, ecfg, events)
	})
}

// BenchmarkRuntimeFanoutScaling sweeps the standing-query count with the
// router on: events/s should degrade far slower than 1/Q because per-event
// work is O(matching engines + dispatch), not O(Q).
func BenchmarkRuntimeFanoutScaling(b *testing.B) {
	events := experiments.FanoutEvents(20000)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}
	rcfg := runtimepkg.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096}
	for _, n := range []int{64, 256, 1024} {
		qs := experiments.FanoutQueries(n)
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			benchRuntimeCfg(b, qs, rcfg, ecfg, events)
		})
	}
}

// BenchmarkRuntimeScaling sweeps the shard count; with GOMAXPROCS >= the
// shard count, events/s should grow near-linearly until the core count or
// the partition count caps it.
func BenchmarkRuntimeScaling(b *testing.B) {
	qs := runtimeBenchQueries()
	events := runtimeBenchEvents(20000)
	cfg := core.Config{Strategy: core.StrategyOptimal, BatchSize: 256}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchRuntime(b, qs, shards, cfg, events)
		})
	}
}
